package carrier

import (
	"math"
	"testing"

	"mmlab/internal/config"
	"mmlab/internal/geo"
	"mmlab/internal/units"
)

func attSite(cellID uint32, earfcn uint32, city string, pos geo.Point) CellSite {
	return CellSite{
		Carrier: "A", City: city, Pos: pos,
		Identity: config.CellIdentity{CellID: cellID, PCI: uint16(cellID % 504), EARFCN: earfcn, RAT: config.RATLTE},
	}
}

func mustGen(t *testing.T, acr string) *Generator {
	t.Helper()
	g, err := NewGenerator(acr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorUnknown(t *testing.T) {
	if _, err := NewGenerator("nope"); err == nil {
		t.Error("unknown carrier should error")
	}
}

func TestConfigDeterministic(t *testing.T) {
	g := mustGen(t, "A")
	site := attSite(42, 5780, "C3", geo.Pt(1000, 2000))
	a := g.Config(site, 0)
	b := g.Config(site, 0)
	if a.Serving != b.Serving {
		t.Error("serving config not deterministic")
	}
	if len(a.Freqs) != len(b.Freqs) {
		t.Fatal("freq count differs")
	}
	for i := range a.Freqs {
		if a.Freqs[i] != b.Freqs[i] {
			t.Errorf("freq[%d] differs", i)
		}
	}
}

func TestGeneratedConfigsValidate(t *testing.T) {
	for _, acr := range []string{"A", "T", "V", "S", "CM", "SK", "MO", "CH", "CW", "OR"} {
		g := mustGen(t, acr)
		for id := uint32(1); id <= 50; id++ {
			chans := g.Plan.channelsFor(config.RATLTE)
			earfcn := chans[int(id)%len(chans)].EARFCN
			site := CellSite{
				Carrier: acr, City: "C1", Pos: geo.Pt(float64(id)*300, float64(id)*170),
				Identity: config.CellIdentity{CellID: id, EARFCN: earfcn, RAT: config.RATLTE},
			}
			c := g.Config(site, 0)
			if err := c.Validate(); err != nil {
				t.Fatalf("%s cell %d: %v", acr, id, err)
			}
		}
	}
}

func TestATTCalibration(t *testing.T) {
	g := mustGen(t, "A")
	const n = 2000
	hsCount := map[units.Db]int{}
	dminDominant := 0
	intraGE := 0
	for id := uint32(1); id <= n; id++ {
		site := attSite(id, 850, "C3", geo.Pt(float64(id%50)*400, float64(id/50)*400))
		s := g.servingConfig(site, 0)
		hsCount[s.QHyst]++
		if s.QRxLevMin == -122 {
			dminDominant++
		}
		if s.SIntraSearch >= s.SNonIntraSearch {
			intraGE++
		}
	}
	// Hs is single-valued at 4 dB (Fig. 14).
	if len(hsCount) != 1 || hsCount[4] != n {
		t.Errorf("Hs distribution = %v, want all 4", hsCount)
	}
	// Δmin dominated by −122 (Fig. 14 Simpson index 0.003).
	if f := float64(dminDominant) / n; f < 0.9 {
		t.Errorf("Δmin=-122 share = %v, want > 0.9", f)
	}
	// Θintra ≥ Θnonintra for AT&T everywhere (Fig. 11 left).
	if intraGE != n {
		t.Errorf("Θintra ≥ Θnonintra in %d/%d cells, want all", intraGE, n)
	}
}

func TestATTPriorityByBand(t *testing.T) {
	g := mustGen(t, "A")
	count := func(earfcn uint32) map[int]int {
		c := map[int]int{}
		for id := uint32(1); id <= 500; id++ {
			site := attSite(id, earfcn, "C3", geo.Pt(float64(id)*100, 0))
			c[g.priorityFor(site, earfcn, config.RATLTE, 0)]++
		}
		return c
	}
	// Band 12/17 channels → dominant priority 2 (the paper's LTE-exclusive
	// "main bands" get LOW priority).
	for _, ch := range []uint32{5110, 5780} {
		c := count(ch)
		if c[2] < 400 {
			t.Errorf("channel %d priorities = %v, want dominated by 2", ch, c)
		}
	}
	// Band 30 (9820) → highest (5 dominant).
	c := count(9820)
	if c[5] < 300 || c[5]+c[4] < 450 {
		t.Errorf("channel 9820 priorities = %v, want dominated by 5 then 4", c)
	}
	// UMTS layer gets priority 1-ish, GSM 0.
	site := attSite(7, 850, "C3", geo.Pt(0, 0))
	if p := g.priorityFor(site, 4385, config.RATUMTS, 0); p > 2 {
		t.Errorf("UMTS priority = %d", p)
	}
	if p := g.priorityFor(site, 128, config.RATGSM, 0); p != 0 {
		t.Errorf("GSM priority = %d", p)
	}
}

func TestChicagoCityVariant(t *testing.T) {
	g := mustGen(t, "A")
	diff := 0
	for id := uint32(1); id <= 300; id++ {
		pos := geo.Pt(float64(id)*120, float64(id)*80)
		c1 := g.priorityFor(attSite(id, 850, "C1", pos), 850, config.RATLTE, 0)
		c3 := g.priorityFor(attSite(id, 850, "C3", pos), 850, config.RATLTE, 0)
		if c1 != c3 {
			diff++
		}
	}
	// Chicago's distribution must differ visibly (Fig. 20).
	if diff < 200 {
		t.Errorf("C1 vs C3 priority differs at %d/300 cells, want most", diff)
	}
}

func TestEventMixCalibration(t *testing.T) {
	for _, tc := range []struct {
		acr    string
		wantA3 float64
		wantA5 float64
		wantP  float64
	}{
		{"A", 0.674, 0.261, 0.044},
		{"T", 0.677, 0.100, 0.202},
	} {
		g := mustGen(t, tc.acr)
		const n = 4000
		counts := map[config.EventType]int{}
		for id := uint32(1); id <= n; id++ {
			site := CellSite{Carrier: tc.acr, City: "C3", Pos: geo.Pt(float64(id%60)*250, float64(id/60)*250),
				Identity: config.CellIdentity{CellID: id, EARFCN: 1975, RAT: config.RATLTE}}
			counts[g.PrimaryEvent(site, 0)]++
		}
		check := func(e config.EventType, want float64) {
			got := float64(counts[e]) / n
			if math.Abs(got-want) > 0.03 {
				t.Errorf("%s %s share = %.3f, want ~%.3f", tc.acr, e, got, want)
			}
		}
		check(config.EventA3, tc.wantA3)
		check(config.EventA5, tc.wantA5)
		check(config.EventPeriodic, tc.wantP)
		// A1/A4 rare (<0.5% each, Fig. 5); A6/B1/B2/C1/C2 never.
		if f := float64(counts[config.EventA1]) / n; f > 0.01 {
			t.Errorf("%s A1 share = %v", tc.acr, f)
		}
		for _, e := range []config.EventType{config.EventA6, config.EventB1, config.EventB2, config.EventC1, config.EventC2} {
			if counts[e] != 0 {
				t.Errorf("%s configured %s, which the paper never observes", tc.acr, e)
			}
		}
	}
}

func TestATTA5Thresholds(t *testing.T) {
	g := mustGen(t, "A")
	rsrpT1 := map[units.Dbm]int{}
	rsrqSeen, rsrpSeen := 0, 0
	for id := uint32(1); id <= 3000; id++ {
		site := attSite(id, 850, "C3", geo.Pt(float64(id%60)*200, float64(id/60)*200))
		mc := g.measConfig(site, 0)
		ev := mc.Reports[2]
		if ev.Type != config.EventA5 {
			continue
		}
		if ev.Quantity == config.RSRQ {
			rsrqSeen++
			// ΘA5,S ∈ [−18, −11.5], ΘA5,C ∈ [−18.5, −14] (Fig. 5a).
			if ev.Threshold1 < -18 || ev.Threshold1 > -11.5 {
				t.Errorf("A5 RSRQ T1 = %v out of paper range", ev.Threshold1)
			}
			if ev.Threshold2 < -18.5 || ev.Threshold2 > -14 {
				t.Errorf("A5 RSRQ T2 = %v out of paper range", ev.Threshold2)
			}
		} else {
			rsrpSeen++
			rsrpT1[ev.Threshold1]++
		}
	}
	if rsrqSeen == 0 || rsrpSeen == 0 {
		t.Fatalf("A5 quantity mix: rsrq=%d rsrp=%d", rsrqSeen, rsrpSeen)
	}
	// Dominant RSRP setting ΘA5,S = −44 ("no requirement").
	if f := float64(rsrpT1[-44]) / float64(rsrpSeen); f < 0.6 {
		t.Errorf("ΘA5,S=-44 share = %v, want dominant", f)
	}
}

func TestA3OffsetRanges(t *testing.T) {
	gA := mustGen(t, "A")
	gT := mustGen(t, "T")
	for id := uint32(1); id <= 2000; id++ {
		pos := geo.Pt(float64(id%50)*300, float64(id/50)*300)
		siteA := attSite(id, 850, "C2", pos)
		mcA := gA.measConfig(siteA, 0)
		if ev := mcA.Reports[2]; ev.Type == config.EventA3 {
			if ev.Offset < 0 || ev.Offset > 5 {
				t.Fatalf("AT&T ΔA3 = %v outside [0,5]", ev.Offset)
			}
			if ev.Hysteresis < 1 || ev.Hysteresis > 2.5 {
				t.Fatalf("AT&T HA3 = %v outside [1,2.5]", ev.Hysteresis)
			}
		}
		siteT := CellSite{Carrier: "T", City: "C2", Pos: pos,
			Identity: config.CellIdentity{CellID: id, EARFCN: 1950, RAT: config.RATLTE}}
		mcT := gT.measConfig(siteT, 0)
		if ev := mcT.Reports[2]; ev.Type == config.EventA3 {
			if ev.Offset < -1 || ev.Offset > 15 {
				t.Fatalf("T-Mobile ΔA3 = %v outside [-1,15]", ev.Offset)
			}
		}
	}
}

func TestTMobileNegativeOffsetsExist(t *testing.T) {
	g := mustGen(t, "T")
	neg := 0
	for id := uint32(1); id <= 4000; id++ {
		site := CellSite{Carrier: "T", City: "C2", Pos: geo.Pt(float64(id%20)*5100, float64(id/20)*5100),
			Identity: config.CellIdentity{CellID: id, EARFCN: 1950, RAT: config.RATLTE}}
		if ev := g.measConfig(site, 0).Reports[2]; ev.Type == config.EventA3 && ev.Offset < 0 {
			neg++
		}
	}
	// §6: "Some negative offset values are observed in A3" (T-Mobile).
	if neg == 0 {
		t.Error("no negative ΔA3 generated for T-Mobile")
	}
}

func TestTMobileSpatialUniformity(t *testing.T) {
	g := mustGen(t, "T")
	// Cells within the same 5km tile share idle parameter values (Fig. 21:
	// T-Mobile proximity diversity ~ 0).
	base := CellSite{Carrier: "T", City: "C3", Pos: geo.Pt(1000, 1000),
		Identity: config.CellIdentity{CellID: 1, EARFCN: 1950, RAT: config.RATLTE}}
	for id := uint32(2); id <= 30; id++ {
		near := base
		near.Identity.CellID = id
		near.Pos = geo.Pt(1000+float64(id)*30, 1000+float64(id)*20) // within tile
		a, b := g.servingConfig(base, 0), g.servingConfig(near, 0)
		if a.ThreshServingLow != b.ThreshServingLow || a.SNonIntraSearch != b.SNonIntraSearch {
			t.Fatalf("T-Mobile nearby cells differ: %+v vs %+v", a, b)
		}
	}
}

func TestATTSpatialDiversityExists(t *testing.T) {
	g := mustGen(t, "A")
	vals := map[units.Db]bool{}
	for id := uint32(1); id <= 40; id++ {
		site := attSite(id, 850, "C3", geo.Pt(1000+float64(id)*40, 1000))
		vals[g.servingConfig(site, 0).ThreshServingLow] = true
	}
	// AT&T fine-tunes per cell even in close proximity (Fig. 21).
	if len(vals) < 2 {
		t.Error("AT&T nearby cells all identical; expected per-cell variation")
	}
}

func TestSKTelecomSingleValued(t *testing.T) {
	g := mustGen(t, "SK")
	first := g.servingConfig(CellSite{Carrier: "SK", City: "KR", Pos: geo.Pt(500, 500),
		Identity: config.CellIdentity{CellID: 1, EARFCN: g.Plan.channelsFor(config.RATLTE)[0].EARFCN, RAT: config.RATLTE}}, 0)
	for id := uint32(2); id <= 200; id++ {
		site := CellSite{Carrier: "SK", City: "KR", Pos: geo.Pt(float64(id)*997, float64(id)*313),
			Identity: config.CellIdentity{CellID: id, EARFCN: g.Plan.channelsFor(config.RATLTE)[0].EARFCN, RAT: config.RATLTE}}
		s := g.servingConfig(site, 0)
		if s.QHyst != first.QHyst || s.QRxLevMin != first.QRxLevMin ||
			s.SIntraSearch != first.SIntraSearch || s.ThreshServingLow != first.ThreshServingLow ||
			s.Priority != first.Priority {
			t.Fatalf("SK Telecom cell %d differs: %+v vs %+v", id, s, first)
		}
	}
}

func TestTemporalUpdates(t *testing.T) {
	g := mustGen(t, "A")
	idleChanged, activeChanged := 0, 0
	const n = 3000
	for id := uint32(1); id <= n; id++ {
		site := attSite(id, 850, "C3", geo.Pt(float64(id%60)*200, float64(id/60)*200))
		s0, s1 := g.servingConfig(site, 0), g.servingConfig(site, 1)
		if s0 != s1 {
			idleChanged++
		}
		e0, e1 := g.PrimaryEvent(site, 0), g.PrimaryEvent(site, 1)
		m0, m1 := g.measConfig(site, 0).Reports[2], g.measConfig(site, 1).Reports[2]
		if e0 != e1 || m0 != m1 {
			activeChanged++
		}
	}
	fIdle := float64(idleChanged) / n
	fActive := float64(activeChanged) / n
	// Fig. 13b: idle 0.4–1.6 %, active 21.2–24.1 %.
	if fIdle < 0.002 || fIdle > 0.05 {
		t.Errorf("idle update fraction = %v, want ~0.012", fIdle)
	}
	if fActive < 0.12 || fActive > 0.33 {
		t.Errorf("active update fraction = %v, want ~0.22", fActive)
	}
	if fActive <= fIdle {
		t.Error("active-state params must update more often than idle-state")
	}
}

func TestAnomalousOrderingRare(t *testing.T) {
	// Only CU and TH may invert Θintra < Θnonintra, and only rarely.
	for _, acr := range []string{"A", "T", "V", "CM", "SK"} {
		g := mustGen(t, acr)
		ch := g.Plan.channelsFor(config.RATLTE)[0].EARFCN
		for id := uint32(1); id <= 300; id++ {
			site := CellSite{Carrier: acr, City: "C1", Pos: geo.Pt(float64(id)*321, float64(id)*123),
				Identity: config.CellIdentity{CellID: id, EARFCN: ch, RAT: config.RATLTE}}
			s := g.servingConfig(site, 0)
			if s.SNonIntraSearch > s.SIntraSearch {
				t.Fatalf("%s cell %d: Θnonintra %v > Θintra %v", acr, id, s.SNonIntraSearch, s.SIntraSearch)
			}
		}
	}
	inverted := 0
	g := mustGen(t, "CU")
	ch := g.Plan.channelsFor(config.RATLTE)[0].EARFCN
	for id := uint32(1); id <= 3000; id++ {
		site := CellSite{Carrier: "CU", City: "CN", Pos: geo.Pt(float64(id%20)*5200, float64(id/20)*5200),
			Identity: config.CellIdentity{CellID: id, EARFCN: ch, RAT: config.RATLTE}}
		s := g.servingConfig(site, 0)
		if s.SNonIntraSearch > s.SIntraSearch {
			inverted++
		}
	}
	if inverted == 0 {
		t.Error("CU should exhibit the rare inverted ordering somewhere")
	}
	if f := float64(inverted) / 3000; f > 0.15 {
		t.Errorf("inversion too common: %v", f)
	}
}

func TestMeasConfigStructure(t *testing.T) {
	g := mustGen(t, "A")
	site := attSite(9, 850, "C3", geo.Pt(100, 100))
	mc := g.measConfig(site, 0)
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	if mc.Reports[1].Type != config.EventA2 {
		t.Error("report 1 should be the A2 gate")
	}
	if len(mc.Objects) < 2 {
		t.Errorf("objects = %d, want serving + neighbors", len(mc.Objects))
	}
	nObj := len(mc.Objects)
	wantLinks := 2 * nObj // A2 gate per object + primary per object
	if mc.Reports[2].Type == config.EventA3 {
		// A2 gate per object, A3 on the serving object only, plus the
		// inter-frequency coverage A5 on every non-serving object.
		wantLinks = nObj + 1 + (nObj - 1)
		if _, ok := mc.Reports[3]; !ok && nObj > 1 {
			t.Error("A3-primary cell missing its coverage A5")
		}
	}
	if len(mc.Links) != wantLinks {
		t.Errorf("links = %d, want %d (primary %s)", len(mc.Links), wantLinks, mc.Reports[2].Type)
	}
	// Non-LTE cells carry no measConfig (D1 is 4G→4G active handoffs).
	siteU := site
	siteU.Identity.RAT = config.RATUMTS
	cu := g.Config(siteU, 0)
	if len(cu.Meas.Reports) != 0 {
		t.Error("UMTS cell should have no active-state reports")
	}
}

package radio

import "math"

// LinkModel maps radio conditions to achievable downlink throughput, for
// the Type-II performance experiments (paper §4.1, Figs. 7–8). It follows
// the standard attenuated-Shannon form used in LTE system-level
// simulators: spectral efficiency η = min(η_max, α·log2(1+SINR)), capped by
// the highest modulation-and-coding scheme.
type LinkModel struct {
	BandwidthHz  float64 // cell bandwidth, e.g. 10 MHz → 10e6
	Alpha        float64 // implementation-loss factor, typically 0.65–0.75
	MaxSpectral  float64 // bits/s/Hz cap, e.g. 4.8 for 64QAM 0.93
	NoiseFigure  float64 // UE noise figure in dB
	OverheadFrac float64 // control/reference overhead fraction, e.g. 0.25
}

// DefaultLinkModel returns parameters typical of a 10 MHz LTE macro cell.
func DefaultLinkModel() LinkModel {
	return LinkModel{
		BandwidthHz:  10e6,
		Alpha:        0.7,
		MaxSpectral:  4.8,
		NoiseFigure:  7,
		OverheadFrac: 0.25,
	}
}

// thermalNoiseDBm returns thermal noise power over bw Hz: −174 dBm/Hz + NF.
func (m LinkModel) thermalNoiseDBm() float64 {
	return -174 + 10*math.Log10(m.BandwidthHz) + m.NoiseFigure
}

// SINR estimates downlink SINR in dB from serving RSRP (dBm) and an
// aggregate interference proxy: interfererRSRP is the strongest co-channel
// neighbor's RSRP (use RSRPMin when none) and load the neighbor's activity
// in [0,1].
//
// RSRP is per-resource-element; total received power is RSRP + 10·log10(#RE),
// but since the same factor applies to interference we can work directly in
// RSRP space and only widen the noise term appropriately. We use the
// conventional 12·50 = 600 REs/ms normalization for a 10 MHz carrier scaled
// by bandwidth.
func (m LinkModel) SINR(servingRSRP, interfererRSRP, load float64) float64 {
	nRE := 600 * m.BandwidthHz / 10e6
	sig := dbmToMw(servingRSRP) * nRE
	intf := dbmToMw(interfererRSRP) * nRE * clamp(load, 0, 1)
	noise := dbmToMw(m.thermalNoiseDBm())
	return 10 * math.Log10(sig/(intf+noise))
}

// Throughput returns achievable downlink throughput in bits/s at the given
// SINR in dB, with share the fraction of cell resources granted to this UE
// (1 for a lone greedy user).
func (m LinkModel) Throughput(sinrDB, share float64) float64 {
	sinr := math.Pow(10, sinrDB/10)
	eta := m.Alpha * math.Log2(1+sinr)
	if eta > m.MaxSpectral {
		eta = m.MaxSpectral
	}
	if eta < 0 {
		eta = 0
	}
	return eta * m.BandwidthHz * (1 - m.OverheadFrac) * clamp(share, 0, 1)
}

// ThroughputFromRSRP is the common composition: SINR from link budget, then
// rate. Interference defaults to a single dominant neighbor at load.
func (m LinkModel) ThroughputFromRSRP(servingRSRP, neighborRSRP, neighborLoad, share float64) float64 {
	return m.Throughput(m.SINR(servingRSRP, neighborRSRP, neighborLoad), share)
}

func dbmToMw(dbm float64) float64 { return math.Pow(10, dbm/10) }

// DBmToMw converts dBm to milliwatts.
func DBmToMw(dbm float64) float64 { return dbmToMw(dbm) }

// Package stats implements the statistical machinery of the paper's
// analysis: the Simpson index of diversity and coefficient of variation
// (Eq. 4), the dependence measure ζ (Eq. 5), and the CDF / quantile /
// boxplot / histogram summaries used throughout §4–§5.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

package netsim

import (
	"context"
	"math"

	"mmlab/internal/geo"
	"mmlab/internal/mobility"
	"mmlab/internal/sim"
)

// RowRoute builds a straight drive route that passes along a row of cell
// sites (drive-test roads run past towers; a route far from every site
// never develops the large RSRP differentials that high-offset events
// need). laneOffset shifts the road sideways from the tower row in meters.
func RowRoute(w *World, speedKmh float64, laneOffset float64) *mobility.Route {
	y := w.Region.Center().Y
	// Find the site row nearest the region's vertical center.
	best := math.Inf(1)
	for _, c := range w.Cells {
		if d := math.Abs(c.Site.Pos.Y - y); d < best {
			best = d
			y = c.Site.Pos.Y
		}
	}
	y += laneOffset
	margin := w.Region.Width() * 0.03
	return mobility.NewRoute(speedKmh,
		geo.Pt(w.Region.Min.X+margin, y),
		geo.Pt(w.Region.Max.X-margin, y))
}

// SweepResult aggregates handoff-quality numbers over several drives.
type SweepResult struct {
	Handoffs  int
	MinThpts  []float64 // per-handoff min pre-report throughput (bps)
	DeltaRSRP []float64 // per-handoff RSRP change (dB)
	RSRPOld   []float64
	RSRPNew   []float64
}

// add records one handoff.
func (s *SweepResult) add(h HandoffRecord) {
	s.Handoffs++
	if h.MinThptBefore >= 0 {
		s.MinThpts = append(s.MinThpts, h.MinThptBefore)
	}
	s.DeltaRSRP = append(s.DeltaRSRP, h.RSRPNew.Sub(h.RSRPOld).V())
	s.RSRPOld = append(s.RSRPOld, h.RSRPOld.V())
	s.RSRPNew = append(s.RSRPNew, h.RSRPNew.V())
}

// merge appends another run's statistics.
func (s *SweepResult) merge(o SweepResult) {
	s.Handoffs += o.Handoffs
	s.MinThpts = append(s.MinThpts, o.MinThpts...)
	s.DeltaRSRP = append(s.DeltaRSRP, o.DeltaRSRP...)
	s.RSRPOld = append(s.RSRPOld, o.RSRPOld...)
	s.RSRPNew = append(s.RSRPNew, o.RSRPNew...)
}

// SweepOpts sizes and seeds a sweep.
type SweepOpts struct {
	// Runs is how many drive runs the sweep performs.
	Runs int
	// BaseSeed seeds the whole sweep. Run i builds its world with
	// sim.DeriveSeed(BaseSeed, 2i) and its UE with
	// sim.DeriveSeed(BaseSeed, 2i+1), so per-run seeds stay attached to
	// the run index and the sweep reproduces under any worker count.
	BaseSeed int64
	// Workers bounds the worker pool (<= 0: runtime.NumCPU()).
	Workers int
}

// RunSweep performs drive runs with per-run derived seeds over the given
// world builder and collects per-handoff statistics in run order; filter
// (optional) selects which handoffs count. Output is byte-identical for
// any SweepOpts.Workers value.
func RunSweep(ctx context.Context, build func(seed int64) *World, move func(w *World) mobility.Model, opts SweepOpts, ue UEOpts, filter func(HandoffRecord) bool) (SweepResult, error) {
	runs, err := sim.Run(ctx, sim.Options{Workers: opts.Workers}, opts.Runs,
		func(_ context.Context, i int) (SweepResult, error) {
			w := build(sim.DeriveSeed(opts.BaseSeed, 2*i))
			o := ue
			o.Seed = sim.DeriveSeed(opts.BaseSeed, 2*i+1)
			m := move(w)
			dur := int64(10 * 60 * 1000)
			if r, ok := m.(*mobility.Route); ok {
				dur = r.Duration()
			}
			res := RunDrive(w, m, dur, o)
			var out SweepResult
			for _, h := range res.Handoffs {
				if filter != nil && !filter(h) {
					continue
				}
				out.add(h)
			}
			return out, nil
		})
	if err != nil {
		return SweepResult{}, err
	}
	var total SweepResult
	for _, r := range runs {
		total.merge(r)
	}
	return total, nil
}

package netsim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"mmlab/internal/carrier"
	"mmlab/internal/geo"
	"mmlab/internal/mobility"
	"mmlab/internal/traffic"
	"mmlab/internal/units"
)

func TestRowRoutePassesSites(t *testing.T) {
	w := testWorld(t, "A", WorldOpts{LTELayers: 1})
	route := RowRoute(w, 50, 0)
	if route.Length() < w.Region.Width()*0.8 {
		t.Errorf("route length %.0f too short for region width %.0f", route.Length(), w.Region.Width())
	}
	// The route's y must coincide with some site row.
	y := route.At(0).Y
	best := math.Inf(1)
	for _, c := range w.Cells {
		if d := math.Abs(c.Site.Pos.Y - y); d < best {
			best = d
		}
	}
	if best > 1 {
		t.Errorf("route %.1f m off the nearest site row", best)
	}
	// Lane offset shifts the road.
	lane := RowRoute(w, 50, 120)
	if math.Abs(lane.At(0).Y-y-120) > 1e-6 {
		t.Errorf("lane offset not applied: %v vs %v", lane.At(0).Y, y)
	}
}

func TestRunSweepAggregates(t *testing.T) {
	g, err := carrier.NewGenerator("T")
	if err != nil {
		t.Fatal(err)
	}
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(5000, 3000))
	build := func(seed int64) *World {
		return BuildWorld(g, region, WorldOpts{Seed: seed, LTELayers: 1})
	}
	move := func(w *World) mobility.Model { return RowRoute(w, 50, 40) }
	ctx := context.Background()
	sweep, err := RunSweep(ctx, build, move, SweepOpts{Runs: 2, BaseSeed: 1000}, UEOpts{Active: true, App: traffic.Speedtest{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Handoffs == 0 {
		t.Fatal("sweep produced no handoffs")
	}
	if len(sweep.DeltaRSRP) != sweep.Handoffs ||
		len(sweep.RSRPOld) != sweep.Handoffs || len(sweep.RSRPNew) != sweep.Handoffs {
		t.Error("per-handoff slices inconsistent")
	}
	for i := range sweep.DeltaRSRP {
		if math.Abs(sweep.RSRPNew[i]-sweep.RSRPOld[i]-sweep.DeltaRSRP[i]) > 1e-9 {
			t.Fatal("DeltaRSRP inconsistent with Old/New")
		}
	}
	if len(sweep.MinThpts) == 0 {
		t.Error("no throughput records despite traffic app")
	}
	// A filter that rejects everything yields an empty sweep.
	empty, err := RunSweep(ctx, build, move, SweepOpts{Runs: 1, BaseSeed: 1000}, UEOpts{Active: true}, func(HandoffRecord) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if empty.Handoffs != 0 {
		t.Error("filter ignored")
	}
}

func TestRunSweepDeterministicAcrossWorkers(t *testing.T) {
	g, err := carrier.NewGenerator("T")
	if err != nil {
		t.Fatal(err)
	}
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(5000, 3000))
	build := func(seed int64) *World {
		return BuildWorld(g, region, WorldOpts{Seed: seed, LTELayers: 1})
	}
	move := func(w *World) mobility.Model { return RowRoute(w, 50, 40) }
	run := func(workers int) SweepResult {
		s, err := RunSweep(context.Background(), build, move,
			SweepOpts{Runs: 3, BaseSeed: 7, Workers: workers},
			UEOpts{Active: true, App: traffic.Speedtest{}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep differs across worker counts:\n workers=1: %+v\n workers=8: %+v", a, b)
	}
}

func TestRSRQInWorldSpansPaperRange(t *testing.T) {
	// The physical RSRQ model must exercise the paper's threshold range:
	// strong isolated positions near −3, contested borders well below −10.
	w := testWorld(t, "A", WorldOpts{LTELayers: 1})
	route := RowRoute(w, 50, 40)
	res := RunDrive(w, route, route.Duration(), UEOpts{Seed: 2, Active: true, App: traffic.Speedtest{}})
	lo, hi := units.Db(0), units.Db(-30)
	for _, h := range res.Handoffs {
		if h.RSRQOld < lo {
			lo = h.RSRQOld
		}
		if h.RSRQOld > hi {
			hi = h.RSRQOld
		}
	}
	if len(res.Handoffs) == 0 {
		t.Skip("no handoffs")
	}
	if lo > -8 {
		t.Errorf("min RSRQ at handoffs = %v, want clearly degraded values", lo)
	}
	if hi > -3 || hi < -19.5 {
		t.Errorf("max RSRQ out of range: %v", hi)
	}
}

package mmlab

import (
	"encoding/json"
	"os"
	"testing"
)

// benchGoldenConfigs maps each committed BENCH_*.json campaign golden to
// the world configuration that produced it: the typed probe path (the
// event-driven scheduler over the spatial index at 1.5×ISD audibility)
// and the seed profile (legacy linear scan + fixed-step tick loop at the
// seed's 4×ISD). Both run the default campaign: 10000-cell arena,
// carrier A, 8 UEs, 30 simulated seconds, benchSeed.
var benchGoldenConfigs = []struct {
	file    string
	radius  float64
	legacy  bool
	profile string
}{
	{"BENCH_pr6.json", 1.5 * countryISD, false, "typed probe path"},
	{"BENCH_seed.json", 4 * countryISD, true, "seed profile"},
}

// TestCountryCampaignMatchesBenchGoldens proves the units migration is
// compile-time only on the probe path: re-running the BENCH campaign
// configuration must reproduce the committed goldens' cell and handoff
// counts exactly. A drift of even one handoff means a unit type changed
// runtime behavior (rounding, comparison, or arithmetic), which the
// byte-identical-outputs contract forbids.
func TestCountryCampaignMatchesBenchGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("country-scale campaign; skipped with -short")
	}
	if *countryCells != 10000 || *countryUEs != 8 || *countryDurS != 30 ||
		*countryRadius != 0 || *countryLinear || *countrySeed {
		t.Skip("country flags overridden; the BENCH goldens pin the default config")
	}
	for _, tc := range benchGoldenConfigs {
		t.Run(tc.file, func(t *testing.T) {
			cells, handoffs := benchGoldenCampaign(t, tc.file)
			w := countryWorldAt(t, tc.radius, tc.legacy)
			if got := len(w.Cells); got != cells {
				t.Errorf("%s: world has %d cells, golden %s recorded %d", tc.profile, got, tc.file, cells)
			}
			if got := runCountryCampaign(w, int64(*countryDurS)*1000, *countryUEs, tc.legacy); got != handoffs {
				t.Errorf("%s: campaign produced %d handoffs, golden %s recorded %d", tc.profile, got, tc.file, handoffs)
			}
		})
	}
}

// benchGoldenCampaign reads the cells and handoffs metrics of
// BenchmarkCountryCampaign from a bench2json golden.
func benchGoldenCampaign(t *testing.T, path string) (cells, handoffs int) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results []struct {
			Name    string             `json:"name"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	for _, r := range doc.Results {
		if r.Name != "BenchmarkCountryCampaign" {
			continue
		}
		c, cok := r.Metrics["cells"]
		h, hok := r.Metrics["handoffs"]
		if !cok || !hok {
			t.Fatalf("%s: BenchmarkCountryCampaign lacks cells/handoffs metrics", path)
		}
		return int(c), int(h)
	}
	t.Fatalf("%s: no BenchmarkCountryCampaign result", path)
	return 0, 0
}

package sib

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// chunkReader yields the stream in pseudo-random chunk sizes so every
// record boundary eventually lands mid-chunk.
type chunkReader struct {
	data []byte
	rng  *rand.Rand
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := 1 + c.rng.Intn(97)
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func collectStream(t *testing.T, s *StreamScanner) []DiagRecord {
	t.Helper()
	var out []DiagRecord
	for {
		rec, ok, err := s.Next()
		if err != nil {
			t.Fatalf("stream scan error: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}

// damage hand-rolls the corruption classes the capture plane produces:
// junk runs, bit flips inside sealed envelopes, truncated records.
func damage(t *testing.T, rng *rand.Rand, n int) []byte {
	t.Helper()
	var stream []byte
	for i := 0; i < n; i++ {
		rec := scanStream(t, 1)
		switch rng.Intn(5) {
		case 0: // junk run before the record
			junk := make([]byte, 1+rng.Intn(40))
			rng.Read(junk)
			stream = append(stream, junk...)
			stream = append(stream, rec...)
		case 1: // flipped bit inside the envelope
			cp := append([]byte(nil), rec...)
			cp[13+rng.Intn(len(cp)-13)] ^= 1 << uint(rng.Intn(8))
			stream = append(stream, cp...)
		case 2: // truncated record
			stream = append(stream, rec[:1+rng.Intn(len(rec)-1)]...)
		default:
			stream = append(stream, rec...)
		}
	}
	return stream
}

// TestStreamScannerMatchesDiagScanner is the equivalence property: over
// damaged streams delivered in arbitrary chunks, the incremental scanner
// yields exactly the records and stats of a batch scan.
func TestStreamScannerMatchesDiagScanner(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stream := damage(t, rng, 30)

		batch := NewDiagScanner(stream)
		want := collect(batch)

		ss := NewStreamScanner(&chunkReader{data: stream, rng: rng}, ScanOptions{Copy: true})
		got := collectStream(t, ss)

		if len(got) != len(want) {
			t.Fatalf("seed %d: records = %d, want %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i].TimestampMs != want[i].TimestampMs || got[i].Dir != want[i].Dir ||
				!bytes.Equal(got[i].Raw, want[i].Raw) {
				t.Fatalf("seed %d: record %d differs", seed, i)
			}
		}
		if ss.Stats() != batch.Stats() {
			t.Fatalf("seed %d: stats %+v, want %+v", seed, ss.Stats(), batch.Stats())
		}
	}
}

// TestStreamScannerReadError checks that a mid-stream read failure
// surfaces after every decodable record was yielded.
func TestStreamScannerReadError(t *testing.T) {
	data := scanStream(t, 4)
	r := io.MultiReader(bytes.NewReader(data), iotestErr{})
	ss := NewStreamScanner(r, ScanOptions{})
	n := 0
	for {
		_, ok, err := ss.Next()
		if !ok {
			if err == nil {
				t.Fatal("read error swallowed")
			}
			break
		}
		n++
	}
	if n != 4 {
		t.Fatalf("records before error = %d, want 4", n)
	}
}

type iotestErr struct{}

func (iotestErr) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

// TestDiagScannerCopyDetachesRecords is the aliasing regression test: a
// caller that reuses the scanned buffer corrupts retained records unless
// Copy is on.
func TestDiagScannerCopyDetachesRecords(t *testing.T) {
	data := scanStream(t, 5)

	// Without Copy, records alias the buffer: zeroing it afterwards
	// destroys them (this is the documented hazard).
	buf := append([]byte(nil), data...)
	aliased := collect(NewDiagScanner(buf))
	for i := range buf {
		buf[i] = 0
	}
	if _, err := aliased[0].Decode(); err == nil {
		t.Fatal("aliased record survived buffer reuse; hazard test is vacuous")
	}

	// With Copy, the same reuse leaves every record intact.
	buf = append(buf[:0], data...)
	copied := collect(NewDiagScannerOpts(buf, ScanOptions{Copy: true}))
	for i := range buf {
		buf[i] = 0
	}
	if len(copied) != 5 {
		t.Fatalf("records = %d, want 5", len(copied))
	}
	for i, r := range copied {
		if _, err := r.Decode(); err != nil {
			t.Fatalf("copied record %d corrupted by buffer reuse: %v", i, err)
		}
	}
}

// TestStreamScannerCopyDetachesRecords: the stream scanner's internal
// buffer is reused across reads, so without Copy a record is only valid
// until the next Next call; with Copy retained records stay intact.
func TestStreamScannerCopyDetachesRecords(t *testing.T) {
	data := scanStream(t, 64)
	rng := rand.New(rand.NewSource(1))
	ss := NewStreamScanner(&chunkReader{data: data, rng: rng}, ScanOptions{Copy: true})
	recs := collectStream(t, ss)
	if len(recs) != 64 {
		t.Fatalf("records = %d, want 64", len(recs))
	}
	for i, r := range recs {
		if _, err := r.Decode(); err != nil {
			t.Fatalf("retained record %d invalid after scan completed: %v", i, err)
		}
	}
}

// Package mobility provides the movement models behind the paper's
// Type-II drive tests: local driving (<50 km/h), highway driving
// (90–120 km/h, §4), static placement, waypoint routes and random
// waypoint — each yielding the UE position at any simulation time.
package mobility

import (
	"math"
	"math/rand"

	"mmlab/internal/geo"
)

// Model yields a position for every millisecond of simulation time.
type Model interface {
	// At returns the position at time t (milliseconds from simulation
	// start). Implementations must be deterministic in t.
	At(tMs int64) geo.Point
}

// KmhToMps converts km/h to m/s.
func KmhToMps(kmh float64) float64 { return kmh / 3.6 }

// Static is a non-moving device.
type Static struct {
	Pos geo.Point
}

// At implements Model.
func (s Static) At(int64) geo.Point { return s.Pos }

// Linear moves at constant velocity from a start point.
type Linear struct {
	Start geo.Point
	// VelX/VelY in meters per second.
	VelX, VelY float64
}

// NewLinear builds a linear drive toward a heading (radians, 0 = +X) at
// speed km/h.
func NewLinear(start geo.Point, headingRad, speedKmh float64) Linear {
	v := KmhToMps(speedKmh)
	return Linear{Start: start, VelX: v * math.Cos(headingRad), VelY: v * math.Sin(headingRad)}
}

// At implements Model.
func (l Linear) At(tMs int64) geo.Point {
	s := float64(tMs) / 1000
	return geo.Pt(l.Start.X+l.VelX*s, l.Start.Y+l.VelY*s)
}

// Route drives through an ordered list of waypoints at a constant speed,
// holding the final position after the last waypoint. It models the
// paper's drive tests along city roads and highways.
type Route struct {
	points   []geo.Point
	cumDist  []float64 // cumulative distance at each waypoint
	speedMps float64
}

// NewRoute builds a route over waypoints at speed km/h. It needs at least
// one waypoint; consecutive duplicates are tolerated.
func NewRoute(speedKmh float64, waypoints ...geo.Point) *Route {
	r := &Route{speedMps: KmhToMps(speedKmh)}
	r.points = append(r.points, waypoints...)
	r.cumDist = make([]float64, len(r.points))
	for i := 1; i < len(r.points); i++ {
		r.cumDist[i] = r.cumDist[i-1] + r.points[i-1].Dist(r.points[i])
	}
	return r
}

// Length returns the total route length in meters.
func (r *Route) Length() float64 {
	if len(r.cumDist) == 0 {
		return 0
	}
	return r.cumDist[len(r.cumDist)-1]
}

// Duration returns the time to complete the route in milliseconds.
func (r *Route) Duration() int64 {
	if r.speedMps <= 0 {
		return 0
	}
	return int64(r.Length() / r.speedMps * 1000)
}

// At implements Model.
func (r *Route) At(tMs int64) geo.Point {
	if len(r.points) == 0 {
		return geo.Pt(0, 0)
	}
	if tMs <= 0 || r.speedMps <= 0 {
		return r.points[0]
	}
	d := r.speedMps * float64(tMs) / 1000
	if d >= r.Length() {
		return r.points[len(r.points)-1]
	}
	// Find the segment containing distance d.
	i := 1
	for ; i < len(r.cumDist); i++ {
		if r.cumDist[i] >= d {
			break
		}
	}
	segLen := r.cumDist[i] - r.cumDist[i-1]
	if segLen == 0 {
		return r.points[i]
	}
	frac := (d - r.cumDist[i-1]) / segLen
	return r.points[i-1].Lerp(r.points[i], frac)
}

// RandomWaypoint wanders within a region: pick a uniform destination, move
// to it at a speed drawn from [minKmh, maxKmh], pause, repeat. Standard
// mobility benchmark model; deterministic from its seed.
type RandomWaypoint struct {
	region  geo.Rect
	legs    []rwLeg
	totalMs int64
}

type rwLeg struct {
	from, to geo.Point
	startMs  int64
	durMs    int64
	pauseMs  int64
}

// NewRandomWaypoint precomputes enough legs to cover horizonMs of
// movement.
func NewRandomWaypoint(seed int64, region geo.Rect, minKmh, maxKmh float64, pauseMs int64, horizonMs int64) *RandomWaypoint {
	rng := rand.New(rand.NewSource(seed))
	rw := &RandomWaypoint{region: region}
	cur := geo.Pt(
		region.Min.X+rng.Float64()*region.Width(),
		region.Min.Y+rng.Float64()*region.Height(),
	)
	var t int64
	for t < horizonMs {
		dst := geo.Pt(
			region.Min.X+rng.Float64()*region.Width(),
			region.Min.Y+rng.Float64()*region.Height(),
		)
		speed := KmhToMps(minKmh + rng.Float64()*(maxKmh-minKmh))
		if speed <= 0 {
			speed = 1
		}
		dur := int64(cur.Dist(dst) / speed * 1000)
		if dur < 1 {
			dur = 1
		}
		rw.legs = append(rw.legs, rwLeg{from: cur, to: dst, startMs: t, durMs: dur, pauseMs: pauseMs})
		t += dur + pauseMs
		cur = dst
	}
	rw.totalMs = t
	return rw
}

// At implements Model.
func (rw *RandomWaypoint) At(tMs int64) geo.Point {
	if len(rw.legs) == 0 {
		return rw.region.Center()
	}
	if tMs < 0 {
		tMs = 0
	}
	if rw.totalMs > 0 {
		tMs %= rw.totalMs
	}
	for _, leg := range rw.legs {
		if tMs < leg.startMs+leg.durMs {
			frac := float64(tMs-leg.startMs) / float64(leg.durMs)
			if frac < 0 {
				frac = 0
			}
			return leg.from.Lerp(leg.to, frac)
		}
		if tMs < leg.startMs+leg.durMs+leg.pauseMs {
			return leg.to
		}
	}
	return rw.legs[len(rw.legs)-1].to
}

// Highway builds a long straight drive at highway speed across a region,
// entering on the left edge and exiting on the right (the paper's
// "highways in between" runs at 90–120 km/h).
func Highway(region geo.Rect, speedKmh float64) *Route {
	y := region.Center().Y
	return NewRoute(speedKmh, geo.Pt(region.Min.X, y), geo.Pt(region.Max.X, y))
}

// CityLoop builds a rectangular loop around the region interior at local
// driving speed (<50 km/h), approximating a city drive test.
func CityLoop(region geo.Rect, speedKmh float64) *Route {
	inset := math.Min(region.Width(), region.Height()) * 0.2
	a := geo.Pt(region.Min.X+inset, region.Min.Y+inset)
	b := geo.Pt(region.Max.X-inset, region.Min.Y+inset)
	c := geo.Pt(region.Max.X-inset, region.Max.Y-inset)
	d := geo.Pt(region.Min.X+inset, region.Max.Y-inset)
	return NewRoute(speedKmh, a, b, c, d, a)
}

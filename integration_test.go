package mmlab

// Cross-module integration tests: the invariants that hold only when the
// whole pipeline — generator → wire → crawler → dataset → analysis — is
// consistent end to end.

import (
	"bytes"
	"context"
	"reflect"
	"sort"
	"testing"

	"mmlab/internal/analysis"
	"mmlab/internal/carrier"
	"mmlab/internal/config"
	"mmlab/internal/crawler"
	"mmlab/internal/dataset"
	"mmlab/internal/experiment"
	"mmlab/internal/geo"
	"mmlab/internal/netsim"
	"mmlab/internal/predict"
	"mmlab/internal/sib"
	"mmlab/internal/traffic"
	"mmlab/internal/verify"
)

// TestHonestPipeline verifies the epistemic core of the reproduction:
// every configuration the analysis layer sees went over the wire, and the
// wire is lossless — the crawled CellConfig equals the generated one for
// every cell of a fleet.
func TestHonestPipeline(t *testing.T) {
	fleet, err := carrier.BuildFleet("A", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := crawler.CrawlFleet(context.Background(), fleet, &buf, 9, 0); err != nil {
		t.Fatal(err)
	}
	snaps, _, err := crawler.ParseDiag(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := range snaps {
		cs := &snaps[i]
		site, ok := fleet.SiteByID(cs.Identity.CellID)
		if !ok {
			t.Fatalf("crawled unknown cell %d", cs.Identity.CellID)
		}
		// Re-generate at the epoch the visit was taken (month index).
		epoch := int(cs.TimeMs / (30 * 24 * 3600 * 1000))
		orig := fleet.Gen.Config(site, epoch)
		if cs.Config.Serving != orig.Serving {
			t.Fatalf("cell %d serving differs after the wire:\n got %+v\nwant %+v",
				cs.Identity.CellID, cs.Config.Serving, orig.Serving)
		}
		// SIB grouping reorders relations by target RAT; compare as sets.
		if !reflect.DeepEqual(sortedFreqs(cs.Config.Freqs), sortedFreqs(orig.Freqs)) {
			t.Fatalf("cell %d freqs differ after the wire:\n got %+v\nwant %+v",
				cs.Identity.CellID, cs.Config.Freqs, orig.Freqs)
		}
		if len(orig.Meas.Reports) > 0 && !reflect.DeepEqual(cs.Config.Meas.Reports, orig.Meas.Reports) {
			t.Fatalf("cell %d reports differ after the wire", cs.Identity.CellID)
		}
		checked++
	}
	if checked < len(fleet.Sites) {
		t.Fatalf("checked %d snapshots < %d sites", checked, len(fleet.Sites))
	}
}

// sortedFreqs orders frequency relations canonically for set comparison.
func sortedFreqs(fs []config.FreqRelation) []config.FreqRelation {
	out := append([]config.FreqRelation(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RAT != out[j].RAT {
			return out[i].RAT < out[j].RAT
		}
		return out[i].EARFCN < out[j].EARFCN
	})
	return out
}

// TestGlobalD2Deterministic: two global builds with the same seed are
// byte-identical through serialization.
func TestGlobalD2Deterministic(t *testing.T) {
	a, err := crawler.BuildGlobalD2(context.Background(), 0.005, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := crawler.BuildGlobalD2(context.Background(), 0.005, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := dataset.WriteD2(&ba, a.Snapshots); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteD2(&bb, b.Snapshots); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("global D2 not deterministic")
	}
	if a.UniqueCells() == 0 || len(a.Carriers()) != 30 {
		t.Fatalf("tiny D2 malformed: %d cells, %d carriers", a.UniqueCells(), len(a.Carriers()))
	}
}

// TestDatasetSerializationFidelity: JSONL round trip preserves every
// analysis result (Fig. 14 distributions identical before/after disk).
func TestDatasetSerializationFidelity(t *testing.T) {
	fleet, err := carrier.BuildFleet("A", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := crawler.BuildD2(context.Background(), fleet, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	orig := &dataset.D2{Snapshots: snaps}
	var buf bytes.Buffer
	if err := dataset.WriteD2(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	loaded, err := dataset.ReadD2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	before := analysis.Fig14(orig, "A")
	after := analysis.Fig14(loaded, "A")
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Fig14 differs across a JSONL round trip")
	}
	if rows := analysis.Table4(loaded); rows[0].Parameters != 66 {
		t.Fatal("Table4 broken after round trip")
	}
}

// TestDriveToAnalysisPipeline: a single drive flows through diag capture,
// the predictor, and the verifier without any module disagreeing about
// what happened.
func TestDriveToAnalysisPipeline(t *testing.T) {
	gen, err := carrier.NewGenerator("T")
	if err != nil {
		t.Fatal(err)
	}
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(6000, 4000))
	w := netsim.BuildWorld(gen, region, netsim.WorldOpts{Seed: 21})
	var buf bytes.Buffer
	dw := sib.NewDiagWriter(&buf)
	route := netsim.RowRoute(w, 50, 60)
	res := netsim.RunDrive(w, route, route.Duration(), netsim.UEOpts{
		Seed: 8, Active: true, App: traffic.Speedtest{}, Diag: dw,
	})
	if err := dw.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(res.Handoffs) == 0 {
		t.Fatal("quiet drive")
	}
	raw := buf.Bytes()

	// Crawler agrees with ground truth.
	snaps, events, err := crawler.ParseDiag(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(res.Handoffs) {
		t.Fatalf("crawler events %d != handoffs %d", len(events), len(res.Handoffs))
	}
	// Predictor is accurate on the same bytes.
	score, err := predict.Evaluate(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if score.Precision() < 0.9 || score.Recall() < 0.9 {
		t.Errorf("predictor on drive log: precision %.2f recall %.2f", score.Precision(), score.Recall())
	}
	// Verifier runs over the crawled configs without flagging loops in a
	// T-Mobile plan (market-uniform priorities cannot loop).
	cfgs := make([]*config.CellConfig, 0, len(snaps))
	for i := range snaps {
		cfgs = append(cfgs, &snaps[i].Config)
	}
	if loops := verify.FindPriorityLoops(cfgs); len(loops) != 0 {
		t.Errorf("T-Mobile plan loops: %v", loops)
	}
}

// TestD1CampaignRenderable: the D1 → figures path produces every Q2
// rendering without error at small scale.
func TestD1CampaignRenderable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign")
	}
	d1, err := experiment.BuildD1(context.Background(), experiment.D1Options{Scale: 0.005, Seed: 2, Cities: []string{"C3"}})
	if err != nil {
		t.Fatal(err)
	}
	outputs := []string{
		analysis.RenderFig5(analysis.Fig5(d1, "A", "T")),
		analysis.RenderFig6(analysis.Fig6(d1, "A")),
		analysis.RenderFig9(analysis.Fig9(d1, "T", "RSRP")),
		analysis.RenderFig10(analysis.Fig10(d1)),
	}
	for i, s := range outputs {
		if len(s) < 40 {
			t.Errorf("rendering %d too short", i)
		}
	}
}

// Package analysis implements one pipeline per table and figure of the
// paper's evaluation (Figs. 5–22, Tables 2–4), computing over datasets D1
// and D2 exactly the statistics the paper reports. It depends only on the
// datasets and the statistics library — never on the generators — so it
// sees what a real analyst would see.
package analysis

import (
	"math"
	"sort"

	"mmlab/internal/dataset"
	"mmlab/internal/stats"
)

// EventOrder lists the reporting-event labels in the paper's plotting
// order (Fig. 5 x-axis).
var EventOrder = []string{"A1", "A2", "A3", "A4", "A5", "P"}

// Fig5Carrier is one carrier's decisive-event profile.
type Fig5Carrier struct {
	Carrier string
	N       int
	// Share of decisive events per label (fractions of active handoffs).
	Share map[string]float64
	// Observed parameter ranges of the decisive configurations.
	A3Offset      [2]float64 // [min, max] dB
	A3Hysteresis  [2]float64
	A3DominantOff float64
	A5RSRPT1      [2]float64 // ΘA5,S range (RSRP cases)
	A5RSRPT2      [2]float64 // ΘA5,C range
	A5RSRQT1      [2]float64
	A5RSRQT2      [2]float64
}

func rangeOf(xs []float64) [2]float64 {
	if len(xs) == 0 {
		return [2]float64{math.NaN(), math.NaN()}
	}
	return [2]float64{stats.Min(xs), stats.Max(xs)}
}

// Fig5 computes the decisive reporting-event distribution and parameter
// ranges per carrier over D1's active handoffs (paper Fig. 5).
func Fig5(d1 *dataset.D1, carriers ...string) []Fig5Carrier {
	byCarrier := map[string][]dataset.D1Record{}
	for _, r := range d1.Active() {
		byCarrier[r.Carrier] = append(byCarrier[r.Carrier], r)
	}
	var out []Fig5Carrier
	for _, acr := range carriers {
		recs := byCarrier[acr]
		fc := Fig5Carrier{Carrier: acr, N: len(recs), Share: map[string]float64{}}
		var a3off, a3hyst, a5pt1, a5pt2, a5qt1, a5qt2 []float64
		a3offCount := stats.Counts{}
		for _, r := range recs {
			fc.Share[r.Event]++
			switch r.Event {
			case "A3":
				a3off = append(a3off, r.Offset)
				a3hyst = append(a3hyst, r.Hysteresis)
				a3offCount[r.Offset]++
			case "A5":
				if r.Quantity == "RSRQ" {
					a5qt1 = append(a5qt1, r.Threshold1)
					a5qt2 = append(a5qt2, r.Threshold2)
				} else {
					a5pt1 = append(a5pt1, r.Threshold1)
					a5pt2 = append(a5pt2, r.Threshold2)
				}
			}
		}
		if fc.N > 0 {
			for ev := range fc.Share {
				fc.Share[ev] /= float64(fc.N)
			}
		}
		fc.A3Offset = rangeOf(a3off)
		fc.A3Hysteresis = rangeOf(a3hyst)
		fc.A5RSRPT1 = rangeOf(a5pt1)
		fc.A5RSRPT2 = rangeOf(a5pt2)
		fc.A5RSRQT1 = rangeOf(a5qt1)
		fc.A5RSRQT2 = rangeOf(a5qt2)
		fc.A3DominantOff, _ = a3offCount.Dominant()
		out = append(out, fc)
	}
	return out
}

// Fig6Result captures RSRP changes across active handoffs for one carrier.
type Fig6Result struct {
	Carrier string
	// Points maps decisive event → (RSRP old, RSRP new) pairs (Fig. 6a).
	Points map[string][][2]float64
	// DeltaCDF maps decisive event → CDF of δRSRP (Fig. 6b).
	DeltaCDF map[string]*stats.CDF
	// ImprovedShare maps event → fraction of handoffs with δRSRP > 0.
	ImprovedShare map[string]float64
	// ImprovedWithin3dB counts δRSRP > −3 dB as improved ("given that 3dB
	// measurement dynamics is common").
	ImprovedWithin3dB map[string]float64
	// A5 split by configuration sign (Fig. 6c): positive means the
	// candidate threshold exceeds the serving one (improvement implied by
	// configuration), negative the opposite.
	A5Pos, A5Neg *stats.CDF
}

// a5Positive classifies an A5 configuration: candidate threshold above
// serving threshold guarantees a stronger target (paper §4.1).
func a5Positive(r dataset.D1Record) bool {
	return r.Threshold2 > r.Threshold1
}

// Fig6 analyzes δRSRP per decisive event (paper Fig. 6).
func Fig6(d1 *dataset.D1, carrier string) Fig6Result {
	res := Fig6Result{
		Carrier:           carrier,
		Points:            map[string][][2]float64{},
		DeltaCDF:          map[string]*stats.CDF{},
		ImprovedShare:     map[string]float64{},
		ImprovedWithin3dB: map[string]float64{},
	}
	deltas := map[string][]float64{}
	var a5pos, a5neg []float64
	for _, r := range d1.Active() {
		if r.Carrier != carrier {
			continue
		}
		res.Points[r.Event] = append(res.Points[r.Event], [2]float64{r.RSRPOld, r.RSRPNew})
		deltas[r.Event] = append(deltas[r.Event], r.DeltaRSRP())
		if r.Event == "A5" {
			if a5Positive(r) {
				a5pos = append(a5pos, r.DeltaRSRP())
			} else {
				a5neg = append(a5neg, r.DeltaRSRP())
			}
		}
	}
	for ev, ds := range deltas {
		res.DeltaCDF[ev] = stats.NewCDF(ds)
		better, within := 0, 0
		for _, d := range ds {
			if d > 0 {
				better++
			}
			if d > -3 {
				within++
			}
		}
		res.ImprovedShare[ev] = float64(better) / float64(len(ds))
		res.ImprovedWithin3dB[ev] = float64(within) / float64(len(ds))
	}
	res.A5Pos = stats.NewCDF(a5pos)
	res.A5Neg = stats.NewCDF(a5neg)
	return res
}

// Fig9Result relates configuration values to radio outcomes (Fig. 9).
type Fig9Result struct {
	Carrier string
	// DeltaByOffset: ΔA3 value → boxplot of δRSRP (Fig. 9a).
	DeltaByOffset map[float64]stats.Boxplot
	// OldByA5T1: ΘA5,S → boxplot of the old cell's level at handoff, in
	// the event's own quantity (Fig. 9b left).
	OldByA5T1 map[float64]stats.Boxplot
	// NewByA5T2: ΘA5,C → boxplot of the new cell's level (Fig. 9b right).
	NewByA5T2 map[float64]stats.Boxplot
	Quantity  string
	// DeltaSmallOffsets / DeltaLargeOffsets aggregate δRSRP over ΔA3 ≤ 3
	// and ΔA3 ≥ 8 respectively — the figure's headline gradient.
	DeltaSmallOffsets stats.Boxplot
	DeltaLargeOffsets stats.Boxplot
}

// Fig9 groups radio outcomes by the decisive configuration values.
// quantity selects which A5 family to analyze ("RSRP" or "RSRQ"; the
// paper's Fig. 9b uses RSRQ).
func Fig9(d1 *dataset.D1, carrier, quantity string) Fig9Result {
	res := Fig9Result{
		Carrier:       carrier,
		DeltaByOffset: map[float64]stats.Boxplot{},
		OldByA5T1:     map[float64]stats.Boxplot{},
		NewByA5T2:     map[float64]stats.Boxplot{},
		Quantity:      quantity,
	}
	deltaBy := map[float64][]float64{}
	oldBy := map[float64][]float64{}
	newBy := map[float64][]float64{}
	var small, large []float64
	for _, r := range d1.Active() {
		if r.Carrier != carrier {
			continue
		}
		switch r.Event {
		case "A3":
			// Intra-frequency handoffs only: an inter-frequency target may
			// already exceed the serving cell by far more than ΔA3 when it
			// first becomes measurable, which would wash out the
			// offset→δRSRP relation the figure shows.
			if !r.IntraFreq() {
				continue
			}
			deltaBy[r.Offset] = append(deltaBy[r.Offset], r.DeltaRSRP())
			if r.Offset <= 3 {
				small = append(small, r.DeltaRSRP())
			} else if r.Offset >= 8 {
				large = append(large, r.DeltaRSRP())
			}
		case "A5":
			if r.Quantity != quantity {
				continue
			}
			oldV, newV := r.RSRPOld, r.RSRPNew
			if quantity == "RSRQ" {
				oldV, newV = r.RSRQOld, r.RSRQNew
			}
			oldBy[r.Threshold1] = append(oldBy[r.Threshold1], oldV)
			newBy[r.Threshold2] = append(newBy[r.Threshold2], newV)
		}
	}
	for k, v := range deltaBy {
		res.DeltaByOffset[k] = stats.NewBoxplot(v)
	}
	for k, v := range oldBy {
		res.OldByA5T1[k] = stats.NewBoxplot(v)
	}
	for k, v := range newBy {
		res.NewByA5T2[k] = stats.NewBoxplot(v)
	}
	res.DeltaSmallOffsets = stats.NewBoxplot(small)
	res.DeltaLargeOffsets = stats.NewBoxplot(large)
	return res
}

// Fig10Groups are the idle-handoff categories of Fig. 10: intra-frequency
// plus non-intra split by target-priority relation.
var Fig10Groups = []string{"intra", "nonintra-L", "nonintra-E", "nonintra-H"}

// Fig10Result captures idle-state RSRP changes per category.
type Fig10Result struct {
	Points        map[string][][2]float64
	DeltaCDF      map[string]*stats.CDF
	ImprovedShare map[string]float64
	N             map[string]int
}

// fig10Group classifies one idle handoff.
func fig10Group(r dataset.D1Record) string {
	if r.IntraFreq() {
		return "intra"
	}
	switch r.PriorityRelation() {
	case "higher":
		return "nonintra-H"
	case "lower":
		return "nonintra-L"
	default:
		return "nonintra-E"
	}
}

// Fig10 analyzes idle-state handoffs across all carriers ("results are
// consistent across different carriers", §4.2); pass carriers to filter.
func Fig10(d1 *dataset.D1, carriers ...string) Fig10Result {
	want := map[string]bool{}
	for _, c := range carriers {
		want[c] = true
	}
	res := Fig10Result{
		Points:        map[string][][2]float64{},
		DeltaCDF:      map[string]*stats.CDF{},
		ImprovedShare: map[string]float64{},
		N:             map[string]int{},
	}
	deltas := map[string][]float64{}
	for _, r := range d1.Idle() {
		if len(want) > 0 && !want[r.Carrier] {
			continue
		}
		g := fig10Group(r)
		res.Points[g] = append(res.Points[g], [2]float64{r.RSRPOld, r.RSRPNew})
		deltas[g] = append(deltas[g], r.DeltaRSRP())
	}
	for g, ds := range deltas {
		res.DeltaCDF[g] = stats.NewCDF(ds)
		res.N[g] = len(ds)
		better := 0
		for _, d := range ds {
			if d > 0 {
				better++
			}
		}
		res.ImprovedShare[g] = float64(better) / float64(len(ds))
	}
	return res
}

// DecisiveLatency summarizes the report→execution gaps in D1's active
// records — the evidence behind "handoffs happen immediately (within
// 80-230 ms) once the last measurement report is sent" (§4.1).
func DecisiveLatency(d1 *dataset.D1) stats.Boxplot {
	var gaps []float64
	for _, r := range d1.Active() {
		if r.ReportTimeMs > 0 {
			gaps = append(gaps, float64(r.TimeMs-r.ReportTimeMs))
		}
	}
	return stats.NewBoxplot(gaps)
}

// SortedKeys returns a map's float keys in ascending order (rendering
// helper for the grouped-boxplot figures).
func SortedKeys[V any](m map[float64]V) []float64 {
	out := make([]float64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Float64s(out)
	return out
}

// Command figures regenerates every table and figure of the paper's
// evaluation from the datasets (see DESIGN.md §3 for the experiment
// index).
//
// Usage:
//
//	figures -exp fig14 [-d1 d1.jsonl] [-d2 d2.jsonl]
//	figures -exp all   [-gen -scale 0.05]
//
// D1-based experiments (fig5/6/9/10, latency) need -d1; D2-based ones
// (table4, fig11–fig22) need -d2. fig7, fig8, the ablations and the
// robustness sweep (-exp robust, tunable via -fault.* flags) run live
// simulations and need no dataset. With -gen, missing datasets are built
// in memory at -scale. Live simulations and -gen builds run on -workers
// parallel workers (default: all CPUs); output is identical for any
// worker count. Ctrl-C cancels a running simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"mmlab/internal/analysis"
	"mmlab/internal/crawler"
	"mmlab/internal/dataset"
	"mmlab/internal/experiment"
	"mmlab/internal/fault"
)

type ctx struct {
	ctx     context.Context
	d1      *dataset.D1
	d2      *dataset.D2
	seed    int64
	scale   float64
	gen     bool
	workers int
	faults  fault.Rates

	d1Path, d2Path string
}

func (c *ctx) needD1() *dataset.D1 {
	if c.d1 != nil {
		return c.d1
	}
	if c.d1Path != "" {
		fh, err := os.Open(c.d1Path)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		d, err := dataset.ReadD1(fh)
		if err != nil {
			log.Fatal(err)
		}
		c.d1 = d
		return d
	}
	if !c.gen {
		log.Fatal("this experiment needs -d1 <file> (or -gen to build one)")
	}
	log.Printf("building D1 at scale %g ...", c.scale)
	d, err := experiment.BuildD1(c.ctx, experiment.D1Options{Scale: c.scale, Seed: c.seed, Workers: c.workers})
	if err != nil {
		log.Fatal(err)
	}
	c.d1 = d
	return d
}

func (c *ctx) needD2() *dataset.D2 {
	if c.d2 != nil {
		return c.d2
	}
	if c.d2Path != "" {
		fh, err := os.Open(c.d2Path)
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		d, err := dataset.ReadD2(fh)
		if err != nil {
			log.Fatal(err)
		}
		c.d2 = d
		return d
	}
	if !c.gen {
		log.Fatal("this experiment needs -d2 <file> (or -gen to build one)")
	}
	log.Printf("building D2 at scale %g ...", c.scale)
	d, err := crawler.BuildGlobalD2(c.ctx, c.scale, c.seed, c.workers)
	if err != nil {
		log.Fatal(err)
	}
	c.d2 = d
	return d
}

// mainCarrierAcronyms mirrors the paper's nine-carrier panels.
var mainCarrierAcronyms = []string{"A", "T", "S", "V", "CM", "SK", "MO", "CH", "CW"}

var experiments = []struct {
	id  string
	fn  func(*ctx)
	doc string
}{
	{"table2", func(c *ctx) { fmt.Print(analysis.Table2()) }, "LTE parameter catalog"},
	{"table3", func(c *ctx) { fmt.Print(analysis.Table3()) }, "carrier registry"},
	{"table4", func(c *ctx) { fmt.Print(analysis.RenderTable4(analysis.Table4(c.needD2()))) }, "per-RAT breakdown [D2]"},
	{"fig5", func(c *ctx) { fmt.Print(analysis.RenderFig5(analysis.Fig5(c.needD1(), "A", "T"))) }, "decisive reporting events [D1]"},
	{"fig6", func(c *ctx) {
		fmt.Print(analysis.RenderFig6(analysis.Fig6(c.needD1(), "A")))
	}, "RSRP changes in active handoffs [D1]"},
	{"fig7", func(c *ctx) {
		series, err := experiment.Fig7(c.ctx, c.seed, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range series {
			fmt.Printf("ΔA3=%g dB: first A3 report at %d ms, handoff +%d ms; mean min-thpt %.0f bps over %d A3 handoffs\n",
				s.OffsetDB, s.ReportTime, s.HandoffGapMs, s.MinThptBps, s.A3Handoffs)
			fmt.Printf("  1s bins (Mbps):")
			for _, b := range s.Bins1s {
				fmt.Printf(" %.1f", b/1e6)
			}
			fmt.Println()
		}
	}, "throughput timelines ΔA3=5 vs 12 [live sim]"},
	{"fig8", func(c *ctx) {
		res, err := experiment.Fig8(c.ctx, c.seed, 3, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Fig 8: min pre-handoff throughput per configuration")
		for _, r := range res {
			fmt.Printf("  %s/%-4s handoffs=%3d minThpt(bps) %s\n", r.Case.Carrier, r.Case.Label, r.Handoffs, r.MinThpt)
		}
	}, "config → throughput comparison [live sim]"},
	{"fig9", func(c *ctx) {
		fmt.Print(analysis.RenderFig9(analysis.Fig9(c.needD1(), "A", "RSRP")))
		fmt.Print(analysis.RenderFig9(analysis.Fig9(c.needD1(), "T", "RSRP")))
	}, "radio impacts of A3/A5 configs [D1]"},
	{"fig10", func(c *ctx) { fmt.Print(analysis.RenderFig10(analysis.Fig10(c.needD1()))) }, "idle-state RSRP changes [D1]"},
	{"fig11", func(c *ctx) { fmt.Print(analysis.RenderFig11(analysis.Fig11(c.needD2(), ""))) }, "threshold gaps [D2]"},
	{"fig12", func(c *ctx) { fmt.Print(analysis.RenderFig12(analysis.Fig12(c.needD2()))) }, "cells & samples per carrier [D2]"},
	{"fig13", func(c *ctx) { fmt.Print(analysis.RenderFig13(analysis.Fig13(c.needD2(), 20))) }, "temporal dynamics [D2]"},
	{"fig14", func(c *ctx) {
		fmt.Print(analysis.RenderParamDists("Fig 14: eight representative parameters (AT&T)", analysis.Fig14(c.needD2(), "A")))
	}, "parameter distributions AT&T [D2]"},
	{"fig15", func(c *ctx) {
		fmt.Print(analysis.RenderCrossCarrier("Fig 15: four parameters across carriers", analysis.Fig15(c.needD2(), mainCarrierAcronyms)))
	}, "distributions across carriers [D2]"},
	{"fig16", func(c *ctx) {
		fmt.Print(analysis.RenderParamDists("Fig 16: diversity of all LTE parameters (AT&T), sorted by Simpson index", analysis.Fig16(c.needD2(), "A")))
	}, "diversity measures AT&T [D2]"},
	{"fig17", func(c *ctx) {
		fmt.Print(analysis.RenderCrossCarrier("Fig 17: diversity of eight parameters across carriers", analysis.Fig17(c.needD2(), mainCarrierAcronyms)))
	}, "diversity across carriers [D2]"},
	{"fig18", func(c *ctx) { fmt.Print(analysis.RenderFig18(analysis.Fig18(c.needD2(), "A"))) }, "priorities per frequency AT&T [D2]"},
	{"fig19", func(c *ctx) { fmt.Print(analysis.RenderFig19(analysis.Fig19(c.needD2(), "A"), "A")) }, "frequency dependence ζ [D2]"},
	{"fig20", func(c *ctx) {
		fmt.Print(analysis.RenderFig20(analysis.Fig20(c.needD2(), []string{"A", "T", "V", "S"}, []string{"C1", "C2", "C3", "C4", "C5"})))
	}, "city-level priorities [D2]"},
	{"fig21", func(c *ctx) {
		var rs []analysis.Fig21Result
		for _, acr := range []string{"A", "V", "S", "T"} {
			rs = append(rs, analysis.Fig21(c.needD2(), acr, "C3", []float64{0.5, 1, 2}))
		}
		fmt.Print(analysis.RenderFig21(rs))
	}, "spatial diversity [D2]"},
	{"fig22", func(c *ctx) { fmt.Print(analysis.RenderFig22(analysis.Fig22(c.needD2()))) }, "diversity per RAT [D2]"},
	{"latency", func(c *ctx) {
		fmt.Printf("decisive report→handoff latency (ms): %s\n", analysis.DecisiveLatency(c.needD1()))
	}, "80–230 ms decisive-report latency [D1]"},
	{"ablate", func(c *ctx) {
		ttt, err := experiment.AblateTTT(c.ctx, c.seed, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		hyst, err := experiment.AblateHysteresis(c.ctx, c.seed, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		fk, err := experiment.AblateFilterK(c.ctx, c.seed, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		weaker, total, err := experiment.PriorityVsStrongest(c.seed)
		if err != nil {
			log.Fatal(err)
		}
		ss, err := experiment.AblateSpeedScaling(c.ctx, c.seed, c.workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Ablations (DESIGN.md §4):")
		for _, pair := range [][2]experiment.AblationResult{ttt, hyst, fk} {
			for _, r := range pair {
				fmt.Printf("  %-14s handoffs=%3d ping-pong=%2d meanThpt=%.2f Mbps\n",
					r.Label, r.Handoffs, r.PingPong, r.MeanThpt/1e6)
			}
		}
		for _, r := range ss {
			fmt.Printf("  %-16s reselections=%3d meanServingRSRPatHO=%.1f dBm\n", r.Label, r.Handoffs, r.MeanThpt)
		}
		fmt.Printf("  priority-based idle reselection: %d/%d to weaker cells\n", weaker, total)
	}, "design-knob ablations [live sim]"},
	{"robust", func(c *ctx) {
		// -fault.* flags set the level-1.0 mix; all zero means the default
		// mix so the sweep always has something to sweep.
		rows, err := experiment.Robustness(c.ctx, experiment.RobustnessOptions{
			Seed:    c.seed,
			Rates:   c.faults,
			Workers: c.workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Robustness: failure taxonomy vs fault intensity (TS 36.300 §22.4.2)")
		experiment.WriteRobustnessTable(os.Stdout, rows)
	}, "fault-rate sweep → failure classes [live sim, -fault.*]"},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		exp     = flag.String("exp", "", "experiment id (table2..fig22, latency, ablate, all)")
		d1Path  = flag.String("d1", "", "D1 JSONL path")
		d2Path  = flag.String("d2", "", "D2 JSONL path")
		gen     = flag.Bool("gen", false, "build missing datasets in memory")
		scale   = flag.Float64("scale", 0.05, "generation scale with -gen")
		seed    = flag.Int64("seed", 7, "seed for live-simulation experiments")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers (output is identical for any value)")
	)
	rates := fault.RegisterFlags(flag.CommandLine)
	flag.Parse()
	bg, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := &ctx{ctx: bg, seed: *seed, scale: *scale, gen: *gen, workers: *workers, faults: *rates, d1Path: *d1Path, d2Path: *d2Path}

	if *exp == "" || *exp == "list" {
		fmt.Println("experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.doc)
		}
		return
	}
	if *exp == "all" {
		for _, e := range experiments {
			fmt.Printf("===== %s =====\n", strings.ToUpper(e.id))
			e.fn(c)
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.id == *exp {
			e.fn(c)
			return
		}
	}
	log.Fatalf("unknown experiment %q (use -exp list)", *exp)
}

package core

// Radio-link-failure supervision per TS 36.331 §5.3.11: the PHY layer
// compares downlink quality against the Qout/Qin thresholds and issues
// out-of-sync / in-sync indications; N310 consecutive out-of-sync
// indications start T310; N311 consecutive in-sync indications stop it;
// T310 expiry declares radio-link failure, after which the UE attempts
// RRC connection re-establishment under T311 (cell selection) and T301
// (the re-establishment procedure itself). The simulator's fault layer
// exists to drive this machinery: deep fades and lost handover commands
// are exactly what makes real networks' too-late/too-early handoff
// classes appear.

// RLFConfig carries the TS 36.331 constants and timers. Defaults follow
// common LTE field settings (ue-TimersAndConstants).
type RLFConfig struct {
	N310   int     // consecutive out-of-sync indications that start T310
	N311   int     // consecutive in-sync indications that stop T310
	T310Ms Clock   // supervision timer: expiry declares RLF
	T311Ms Clock   // re-establishment cell-selection supervision
	T301Ms Clock   // re-establishment procedure supervision
	QoutDB float64 // SINR below which PHY signals out-of-sync
	QinDB  float64 // SINR above which PHY signals in-sync
}

// fill substitutes defaults for zero fields.
func (c *RLFConfig) fill() {
	if c.N310 == 0 {
		c.N310 = 6
	}
	if c.N311 == 0 {
		c.N311 = 2
	}
	if c.T310Ms == 0 {
		c.T310Ms = 1000
	}
	if c.T311Ms == 0 {
		c.T311Ms = 3000
	}
	if c.T301Ms == 0 {
		c.T301Ms = 400
	}
	if c.QoutDB == 0 {
		c.QoutDB = -8
	}
	if c.QinDB == 0 {
		c.QinDB = -6
	}
}

// DefaultRLFConfig returns the default timer set.
func DefaultRLFConfig() RLFConfig {
	var c RLFConfig
	c.fill()
	return c
}

// RLFPhase is the monitor's state.
type RLFPhase uint8

// Phases.
const (
	RLFInSync   RLFPhase = iota // link healthy
	RLFCounting                 // out-of-sync indications accumulating toward N310
	RLFT310                     // T310 running
	RLFFailed                   // radio-link failure declared; terminal until Reset
)

// String implements fmt.Stringer.
func (p RLFPhase) String() string {
	switch p {
	case RLFCounting:
		return "counting"
	case RLFT310:
		return "t310"
	case RLFFailed:
		return "failed"
	default:
		return "in-sync"
	}
}

// RLFEvent is what one Observe step produced.
type RLFEvent uint8

// Events.
const (
	RLFNone        RLFEvent = iota
	RLFT310Started          // N310 consecutive out-of-sync: T310 armed
	RLFRecovered            // N311 consecutive in-sync: T310 stopped
	RLFDeclared             // T310 expired: radio-link failure
)

// RLFMonitor runs the out-of-sync counting and T310 supervision for one
// RRC connection. It is fed one SINR sample per measurement round.
type RLFMonitor struct {
	cfg   RLFConfig
	phase RLFPhase
	oos   int   // consecutive out-of-sync indications
	ins   int   // consecutive in-sync indications while T310 runs
	t310  Clock // T310 expiry deadline
}

// NewRLFMonitor builds a monitor; zero config fields take defaults.
func NewRLFMonitor(cfg RLFConfig) *RLFMonitor {
	cfg.fill()
	return &RLFMonitor{cfg: cfg}
}

// Config returns the effective (default-filled) configuration.
func (m *RLFMonitor) Config() RLFConfig { return m.cfg }

// Phase returns the current phase.
func (m *RLFMonitor) Phase() RLFPhase { return m.phase }

// Reset returns the monitor to in-sync, as after a successful handoff or
// re-establishment (the new connection starts with fresh counters).
func (m *RLFMonitor) Reset() {
	m.phase = RLFInSync
	m.oos, m.ins = 0, 0
}

// Observe feeds one serving-link SINR sample at time t. Samples below
// Qout are out-of-sync indications, above Qin in-sync indications; the
// band between is indication-free and leaves the counters unchanged (the
// standard's hysteresis). After RLFDeclared the monitor stays in
// RLFFailed until Reset.
func (m *RLFMonitor) Observe(t Clock, sinrDB float64) RLFEvent {
	if m.phase == RLFFailed {
		return RLFNone
	}
	// Timer check first: T310 expires even if this sample looks healthy —
	// recovery needs N311 indications before the deadline, not after.
	if m.phase == RLFT310 && t >= m.t310 {
		m.phase = RLFFailed
		return RLFDeclared
	}
	switch {
	case sinrDB < m.cfg.QoutDB:
		m.ins = 0
		if m.phase == RLFT310 {
			return RLFNone // T310 already running; more out-of-sync changes nothing
		}
		m.oos++
		m.phase = RLFCounting
		if m.oos >= m.cfg.N310 {
			m.phase = RLFT310
			m.t310 = t + m.cfg.T310Ms
			m.oos = 0
			return RLFT310Started
		}
	case sinrDB > m.cfg.QinDB:
		m.oos = 0
		switch m.phase {
		case RLFT310:
			m.ins++
			if m.ins >= m.cfg.N311 {
				m.Reset()
				return RLFRecovered
			}
		case RLFCounting:
			m.phase = RLFInSync
		}
	}
	return RLFNone
}

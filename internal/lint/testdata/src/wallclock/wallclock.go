// Package wallclock is mmvet analyzer testdata; the golden test loads
// it under a deterministic import path (mmlab/internal/core), where
// every wall-clock read must be flagged.
package wallclock

import "time"

func now() int64 {
	return time.Now().UnixMilli() // want "time.Now reads the wall clock"
}

func since(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since reads the wall clock"
}

func timer(d time.Duration) {
	t := time.NewTimer(d) // want "time.NewTimer reads the wall clock"
	<-t.C
	<-time.After(d) // want "time.After reads the wall clock"
}

// Pure duration arithmetic and formatting stay legal.
func legal(d time.Duration) string {
	return (d * 2).String()
}

// Simulated clocks passed in as values are the sanctioned pattern.
func legalSim(nowMs int64, stepMs int64) int64 {
	return nowMs + stepMs
}

func annotated() int64 {
	//mmvet:allow wallclock coarse progress logging only, value never reaches campaign output
	return time.Now().UnixMilli()
}
